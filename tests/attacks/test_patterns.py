"""Attack pattern generators: structure and adjacency."""

import pytest

from repro.attacks import patterns
from repro.dram.address import AddressMapper

from tests.conftest import SMALL_GEOMETRY


@pytest.fixture
def mapper():
    return AddressMapper(SMALL_GEOMETRY)


class TestSingleSided:
    def test_single_row_repeated(self, mapper):
        pattern = patterns.single_sided(mapper, bank=1, bank_row=10, count=5)
        assert len(pattern) == 5
        assert len(set(pattern)) == 1
        assert mapper.bank_of(pattern[0]) == 1

    def test_negative_count_rejected(self, mapper):
        with pytest.raises(ValueError):
            patterns.single_sided(mapper, 0, 0, -1)


class TestDoubleSided:
    def test_alternates_rows_around_victim(self, mapper):
        pattern = patterns.double_sided(
            mapper, bank=2, victim_bank_row=100, pairs=3
        )
        assert len(pattern) == 6
        above, below = pattern[0], pattern[1]
        victim = mapper.encode(2, 100)
        assert above in mapper.neighbors(victim)
        assert below in mapper.neighbors(victim)
        assert pattern[2] == above

    def test_victim_at_edge_rejected(self, mapper):
        with pytest.raises(ValueError):
            patterns.double_sided(mapper, 0, 0, 1)


class TestManySided:
    def test_round_robin(self, mapper):
        pattern = patterns.many_sided(
            mapper, bank=0, first_bank_row=10, aggressors=4, rounds=2
        )
        assert len(pattern) == 8
        assert pattern[:4] == pattern[4:]
        assert len(set(pattern)) == 4

    def test_stride_places_gap_victims(self, mapper):
        pattern = patterns.many_sided(
            mapper, bank=0, first_bank_row=10, aggressors=2, rounds=1, stride=2
        )
        rows = [mapper.bank_row_of(r) for r in pattern]
        assert rows == [10, 12]


class TestHalfDouble:
    def test_far_and_near_rows(self, mapper):
        pattern = patterns.half_double(
            mapper,
            bank=1,
            far_aggressor_bank_row=50,
            far_hammers=100,
            near_hammers_per_epoch=10,
        )
        far = mapper.encode(1, 50)
        near = mapper.encode(1, 51)
        assert pattern.count(far) == 100
        assert 0 < pattern.count(near) <= 10

    def test_near_hammers_bounded(self, mapper):
        pattern = patterns.half_double(
            mapper, 1, 50, far_hammers=640, near_hammers_per_epoch=63
        )
        near = mapper.encode(1, 51)
        assert pattern.count(near) <= 63


class TestDosPattern:
    def test_rotates_rows_across_banks(self, mapper):
        pattern = patterns.dos_pattern(
            mapper, threshold=4, rows_per_bank_used=2
        )
        banks = SMALL_GEOMETRY.banks_per_rank
        assert len(pattern) == 4 * 2 * banks
        # Every bank is hit in each interleaved burst.
        assert {mapper.bank_of(r) for r in pattern[:banks]} == set(
            range(banks)
        )

    def test_each_row_hit_exactly_threshold(self, mapper):
        pattern = patterns.dos_pattern(
            mapper, threshold=8, rows_per_bank_used=3
        )
        from collections import Counter

        counts = Counter(pattern)
        assert set(counts.values()) == {8}


class TestBankConflict:
    def test_two_rows_alternate(self, mapper):
        pattern = patterns.bank_conflict_pattern(
            mapper, bank=0, bank_row=10, rounds=4
        )
        assert len(pattern) == 8
        assert len(set(pattern)) == 2
        assert mapper.bank_of(pattern[0]) == mapper.bank_of(pattern[1])


class TestResetStraddling:
    def test_double_burst(self, mapper):
        pattern = patterns.reset_straddling(mapper, 0, 10, per_side=5)
        assert len(pattern) == 10
        assert len(set(pattern)) == 1
