"""Attack harness mechanics: reporting, timing, instrumentation."""

import pytest

from repro.attacks import patterns
from repro.attacks.adversary import AttackHarness
from repro.core.aqua import AquaMitigation
from repro.mitigations.none import NoMitigation

from tests.conftest import SMALL_GEOMETRY, make_aqua_config


def baseline_harness():
    return AttackHarness(
        NoMitigation(total_rows=SMALL_GEOMETRY.rows_per_rank),
        rowhammer_threshold=128,
        geometry=SMALL_GEOMETRY,
    )


class TestReporting:
    def test_report_fields(self):
        harness = baseline_harness()
        pattern = patterns.single_sided(harness.mapper, 0, 50, 10)
        report = harness.run(pattern)
        assert report.activations == 10
        assert report.scheme == "baseline"
        assert report.elapsed_ns >= report.unimpeded_ns
        assert report.migrations == 0

    def test_slowdown_is_one_without_mitigation(self):
        harness = baseline_harness()
        pattern = patterns.single_sided(harness.mapper, 0, 50, 100)
        report = harness.run(pattern)
        assert report.slowdown == pytest.approx(1.0, rel=0.1)

    def test_peak_matches_ledger(self):
        harness = baseline_harness()
        pattern = patterns.single_sided(harness.mapper, 0, 50, 100)
        report = harness.run(pattern)
        assert report.peak_row_activations == 100

    def test_empty_pattern(self):
        harness = baseline_harness()
        report = harness.run([])
        assert report.activations == 0
        assert report.slowdown == 1.0
        assert not report.succeeded


class TestMitigationSlowdown:
    def test_aqua_migrations_delay_attacker(self):
        harness = AttackHarness(
            AquaMitigation(
                make_aqua_config(rowhammer_threshold=128, rqa_slots=512)
            ),
            rowhammer_threshold=128,
            geometry=SMALL_GEOMETRY,
        )
        pattern = patterns.single_sided(harness.mapper, 0, 50, 2000)
        report = harness.run(pattern)
        assert report.migrations > 0
        assert report.slowdown > 1.0
